// Microbenchmarks (google-benchmark): MILP solve latency at WaterWise batch
// sizes, capacity-timeline operations, and footprint evaluation — the hot
// paths behind the Fig. 13 overhead numbers.
//
// Before the benchmark loop runs, three self-checks gate the binary (exit
// nonzero on regression, so the CI smoke run catches rot):
//   1. warm-start: a branching-heavy corpus solved warm vs. cold must keep
//      >= 90% of non-root nodes warm-started with identical objectives;
//   2. presolve: every corpus family solved with presolve on vs. off must
//      agree on status and objective, so the ablation path cannot drift;
//   3. factor update: every corpus family solved with Forrest-Tomlin
//      updates vs. refactorize-every-pivot must agree, so the update
//      algebra cannot drift from the from-scratch factorization.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "dc/capacity_timeline.hpp"
#include "milp/branch_and_bound.hpp"
#include "milp/instances.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace ww;

/// Branching-heavy instance shared with tests/milp_warm_start_test.cpp (via
/// milp/instances.hpp) so the bench self-check and the test corpus exercise
/// the exact same weak-relaxation pathology.
milp::Model branching_heavy_model(int jobs, int regions) {
  const double cap = std::ceil(jobs / static_cast<double>(regions)) + 1.0;
  return milp::weak_relaxation_model(jobs, regions, cap, /*seed=*/7);
}

/// Verifies the warm-start acceptance bar before benchmarks run; exits
/// nonzero on any regression so CI smoke runs catch it.
void warm_start_selfcheck() {
  long warm_total = 0;
  long non_root_total = 0;
  bool ok = true;
  for (const int jobs : {10, 16, 24}) {
    const milp::Model model = branching_heavy_model(jobs, 3);
    milp::SolverOptions warm_opts;  // warm_start defaults on
    const milp::Solution warm = milp::solve(model, warm_opts);
    milp::SolverOptions cold_opts;
    cold_opts.warm_start = false;
    const milp::Solution cold = milp::solve(model, cold_opts);
    if (warm.status != milp::Status::Optimal ||
        cold.status != milp::Status::Optimal ||
        std::abs(warm.objective - cold.objective) > 1e-7) {
      std::fprintf(stderr,
                   "warm-start self-check FAILED (jobs=%d): warm %s %.9f vs "
                   "cold %s %.9f\n",
                   jobs, milp::to_string(warm.status).c_str(), warm.objective,
                   milp::to_string(cold.status).c_str(), cold.objective);
      ok = false;
      continue;
    }
    warm_total += warm.warm_started_nodes;
    non_root_total += warm.nodes_explored - 1;
  }
  if (non_root_total == 0) {
    // A corpus that never branches would make the check pass vacuously —
    // the exact rot this gate exists to catch.
    std::fprintf(stderr,
                 "warm-start self-check FAILED: corpus produced no non-root "
                 "nodes, warm path unexercised\n");
    ok = false;
  }
  const double frac = non_root_total > 0
                          ? static_cast<double>(warm_total) /
                                static_cast<double>(non_root_total)
                          : 0.0;
  std::printf(
      "warm-start self-check: %ld/%ld non-root nodes warm-started (%.1f%%), "
      "objectives identical to cold solver\n",
      warm_total, non_root_total, 100.0 * frac);
  if (frac < 0.9) {
    std::fprintf(stderr, "warm-start self-check FAILED: %.1f%% < 90%%\n",
                 100.0 * frac);
    ok = false;
  }
  if (!ok) std::exit(1);
}

/// Solves every corpus family with presolve on and off and verifies the
/// answers agree; exits nonzero on divergence so the ablation path (and the
/// postsolve mapping) cannot rot unnoticed.
void presolve_selfcheck() {
  struct Case {
    const char* name;
    milp::Model model;
  };
  const Case corpus[] = {
      {"shaped-64x5", milp::waterwise_shaped_model(64, 5)},
      {"hard-chunk-200x5", milp::hard_chunk_model(200, 5, 0.4)},
      {"soft-chunk-100x5", milp::soft_chunk_model(100, 5)},
      {"weak-relax-16x3", milp::weak_relaxation_model(16, 3, 7.0)},
  };
  bool ok = true;
  long rows_removed = 0;
  long cols_removed = 0;
  for (const Case& c : corpus) {
    milp::SolverOptions on_opts;
    on_opts.presolve = true;
    milp::SolverOptions off_opts;
    off_opts.presolve = false;
    const milp::Solution on = milp::solve(c.model, on_opts);
    const milp::Solution off = milp::solve(c.model, off_opts);
    if (on.status != off.status ||
        std::abs(on.objective - off.objective) > 1e-7 ||
        c.model.max_violation(on.values) > 1e-6) {
      std::fprintf(stderr,
                   "presolve self-check FAILED (%s): on %s %.9f (viol %.2e) "
                   "vs off %s %.9f\n",
                   c.name, milp::to_string(on.status).c_str(), on.objective,
                   c.model.max_violation(on.values),
                   milp::to_string(off.status).c_str(), off.objective);
      ok = false;
      continue;
    }
    rows_removed += on.presolve_rows_removed;
    cols_removed += on.presolve_cols_removed;
  }
  if (rows_removed + cols_removed == 0) {
    // A corpus presolve never touches would make this check vacuous.
    std::fprintf(stderr,
                 "presolve self-check FAILED: corpus produced no "
                 "reductions, presolve path unexercised\n");
    ok = false;
  }
  std::printf(
      "presolve self-check: on == off across the corpus (%ld rows, %ld cols "
      "removed), postsolve feasible\n",
      rows_removed, cols_removed);
  if (!ok) std::exit(1);
}

/// Solves every corpus family with Forrest-Tomlin updates (the default
/// kernel) and with a zero update budget (refactorize after every pivot)
/// and verifies the answers agree; exits nonzero on divergence so the
/// update algebra cannot drift from fresh factorizations unnoticed.
/// Mirrors the presolve self-check, including the vacuousness guard.
void factor_update_selfcheck() {
  struct Case {
    const char* name;
    milp::Model model;
  };
  const Case corpus[] = {
      {"shaped-64x5", milp::waterwise_shaped_model(64, 5)},
      {"hard-chunk-200x5", milp::hard_chunk_model(200, 5, 0.4)},
      {"soft-chunk-100x5", milp::soft_chunk_model(100, 5)},
      {"weak-relax-16x3", milp::weak_relaxation_model(16, 3, 7.0)},
  };
  bool ok = true;
  long ft_total = 0;
  long refactor_total = 0;
  for (const Case& c : corpus) {
    milp::SolverOptions ft_opts;  // update_budget defaults to the FT path
    milp::SolverOptions every_opts;
    every_opts.update_budget = 0;
    const milp::Solution ft = milp::solve(c.model, ft_opts);
    const milp::Solution every = milp::solve(c.model, every_opts);
    if (ft.status != every.status ||
        std::abs(ft.objective - every.objective) > 1e-7 ||
        c.model.max_violation(ft.values) > 1e-6) {
      std::fprintf(stderr,
                   "factor-update self-check FAILED (%s): ft %s %.9f "
                   "(viol %.2e) vs refactorize-every-pivot %s %.9f\n",
                   c.name, milp::to_string(ft.status).c_str(), ft.objective,
                   c.model.max_violation(ft.values),
                   milp::to_string(every.status).c_str(), every.objective);
      ok = false;
      continue;
    }
    ft_total += ft.ft_updates;
    refactor_total += every.refactorizations;
  }
  if (ft_total == 0 && !milp::refactor_every_pivot_forced()) {
    // A corpus that never absorbs an update would make this check vacuous
    // (under WW_REFACTOR_EVERY_PIVOT both sides legitimately refactorize).
    std::fprintf(stderr,
                 "factor-update self-check FAILED: corpus absorbed no "
                 "Forrest-Tomlin updates, update path unexercised\n");
    ok = false;
  }
  std::printf(
      "factor-update self-check: ft == refactorize-every-pivot across the "
      "corpus (%ld updates vs %ld refactorizations)\n",
      ft_total, refactor_total);
  if (!ok) std::exit(1);
}

void solve_with_counters(benchmark::State& state, const milp::Model& model,
                         const milp::SolverOptions& opts) {
  long nodes = 0;
  long warm = 0;
  long phase1 = 0;
  long iters = 0;
  long pre_rows = 0;
  long pre_cols = 0;
  long ft_updates = 0;
  long refactor = 0;
  for (auto _ : state) {
    const milp::Solution sol = milp::solve(model, opts);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.usable()) state.SkipWithError("solver failed");
    nodes += sol.nodes_explored;
    warm += sol.warm_started_nodes;
    phase1 += sol.phase1_nodes;
    iters += sol.simplex_iterations;
    pre_rows += sol.presolve_rows_removed;
    pre_cols += sol.presolve_cols_removed;
    ft_updates += sol.ft_updates;
    refactor += sol.refactorizations;
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
  state.counters["warm"] =
      benchmark::Counter(static_cast<double>(warm), benchmark::Counter::kAvgIterations);
  state.counters["phase1"] =
      benchmark::Counter(static_cast<double>(phase1), benchmark::Counter::kAvgIterations);
  state.counters["simplex_it"] =
      benchmark::Counter(static_cast<double>(iters), benchmark::Counter::kAvgIterations);
  state.counters["pre_rows"] =
      benchmark::Counter(static_cast<double>(pre_rows), benchmark::Counter::kAvgIterations);
  state.counters["pre_cols"] =
      benchmark::Counter(static_cast<double>(pre_cols), benchmark::Counter::kAvgIterations);
  state.counters["ft_updates"] =
      benchmark::Counter(static_cast<double>(ft_updates), benchmark::Counter::kAvgIterations);
  state.counters["refactor"] =
      benchmark::Counter(static_cast<double>(refactor), benchmark::Counter::kAvgIterations);
}

void BM_MilpSolveBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = milp::waterwise_shaped_model(jobs, 5);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 5 regions");
}
// 200 jobs x 5 regions is 405 rows — the ">= 400 rows" scale the sparse
// kernel's speedup acceptance bar is measured at.
BENCHMARK(BM_MilpSolveBatch)->Arg(8)->Arg(16)->Arg(64)->Arg(128)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_MilpSolveLargeChunk(benchmark::State& state) {
  // The paper-scale hard model: a full 400-job chunk over 10 regions
  // (810 rows, ~4 nonzeros per column).  The dense kernel took ~1.2 s per
  // solve here; the sparse LU kernel is expected well under a third of it.
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = milp::waterwise_shaped_model(jobs, 10);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 10 regions");
}
BENCHMARK(BM_MilpSolveLargeChunk)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_MilpSolveHardChunk(benchmark::State& state) {
  // The hard chunk model exactly as the scheduler emits it: delay handled
  // by x_mn = 0 bound fixings (40% of remote pairs).  This is presolve's
  // home turf — fixed columns substitute out, emptied capacity rows drop —
  // so the on/off pair below is the per-solve presolve speedup bar at
  // 405/810 rows.
  const int jobs = static_cast<int>(state.range(0));
  const int regions = static_cast<int>(state.range(1));
  const milp::Model model = milp::hard_chunk_model(jobs, regions, 0.4);
  milp::SolverOptions opts;
  opts.presolve = state.range(2) != 0;
  solve_with_counters(state, model, opts);
  state.SetLabel(std::to_string(jobs) + " jobs x " + std::to_string(regions) +
                 " regions, presolve " + (state.range(2) ? "on" : "off"));
}
BENCHMARK(BM_MilpSolveHardChunk)
    ->Args({200, 5, 1})->Args({200, 5, 0})
    ->Args({400, 10, 1})->Args({400, 10, 0})
    ->Unit(benchmark::kMillisecond);

void BM_MilpSolveSoftChunk(benchmark::State& state) {
  // The soft-model pathology at paper scale: a full chunk whose delay rows
  // all softened (Eq. 12-13), several thousand rows of per-pair penalty
  // structure.  ~3800 rows at 400 x 10.
  const int jobs = static_cast<int>(state.range(0));
  const int regions = static_cast<int>(state.range(1));
  const milp::Model model = milp::soft_chunk_model(jobs, regions);
  milp::SolverOptions opts;
  opts.presolve = state.range(2) != 0;
  solve_with_counters(state, model, opts);
  state.SetLabel(std::to_string(jobs) + " jobs x " + std::to_string(regions) +
                 " regions soft, presolve " + (state.range(2) ? "on" : "off"));
}
BENCHMARK(BM_MilpSolveSoftChunk)
    ->Args({400, 10, 1})->Args({400, 10, 0})
    ->Unit(benchmark::kMillisecond);

void BM_MilpLongPivotRun(benchmark::State& state) {
  // The flatness witness for the Forrest-Tomlin kernel: the 810-row hard
  // chunk solved raw (presolve off so the pivot run is long) with the
  // default update budget vs. a single factorization carrying the whole
  // ~2000-pivot run.  Under the product-form eta file this replaced, the
  // unbounded case ground to a halt as every ftran/btran dragged the whole
  // eta file; with in-place updates the two times should be comparable —
  // the ft_updates counter shows the run length.
  const milp::Model model = milp::hard_chunk_model(400, 10, 0.4);
  milp::SolverOptions opts;
  opts.presolve = false;
  if (state.range(0) == 0) {
    opts.update_budget = 1 << 20;
    opts.refactor_interval = 1 << 20;
    opts.fill_growth_limit = 1e9;
  }
  solve_with_counters(state, model, opts);
  state.SetLabel(state.range(0) == 0 ? "one factorization, unbounded updates"
                                     : "default budget/fill triggers");
}
BENCHMARK(BM_MilpLongPivotRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MilpPricingRule(benchmark::State& state) {
  // Devex-vs-Dantzig iteration/latency trade at a mid scheduler scale.
  const milp::Model model = milp::waterwise_shaped_model(128, 5);
  milp::SolverOptions opts;
  opts.pricing = state.range(0) == 0 ? milp::Pricing::Devex
                                     : milp::Pricing::Dantzig;
  solve_with_counters(state, model, opts);
  state.SetLabel(state.range(0) == 0 ? "devex" : "dantzig");
}
BENCHMARK(BM_MilpPricingRule)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MilpBranchingWarm(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = branching_heavy_model(jobs, 3);
  solve_with_counters(state, model, {});
  state.SetLabel(std::to_string(jobs) + " jobs x 3 regions, warm");
}
BENCHMARK(BM_MilpBranchingWarm)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_MilpBranchingCold(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const milp::Model model = branching_heavy_model(jobs, 3);
  milp::SolverOptions opts;
  opts.warm_start = false;
  solve_with_counters(state, model, opts);
  state.SetLabel(std::to_string(jobs) + " jobs x 3 regions, cold");
}
BENCHMARK(BM_MilpBranchingCold)->Arg(10)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_CapacityTimelineReserve(benchmark::State& state) {
  for (auto _ : state) {
    dc::CapacityTimeline tl(64);
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
      tl.reserve(t, t + 100.0);
      t += 5.0;
      if (i % 64 == 0) tl.prune(t - 200.0);
    }
    benchmark::DoNotOptimize(tl.occupancy_at(t));
  }
}
BENCHMARK(BM_CapacityTimelineReserve)->Unit(benchmark::kMicrosecond);

void BM_FootprintIntegration(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  const footprint::FootprintModel fp(env);
  double t = 0.0;
  for (auto _ : state) {
    const footprint::Breakdown b = fp.job_integrated(2, t, 4000.0, 0.3);
    benchmark::DoNotOptimize(b.carbon_g());
    t += 977.0;
  }
}
BENCHMARK(BM_FootprintIntegration)->Unit(benchmark::kMicrosecond);

void BM_ObsSpanDisabled(benchmark::State& state) {
  // The cost a span leaves on an untraced hot path: one relaxed atomic
  // load in the constructor, one in the destructor.  This is the number
  // the bench_fig13 5% overhead gate ultimately rests on.
  obs::Trace::instance().set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench.noop");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  // Full emission path: two timestamped events plus one integer arg,
  // through the per-thread buffer's mutex.  Buffers are cleared each
  // iteration batch so the 1M-event cap never engages mid-measurement.
  obs::Trace::instance().set_enabled(true);
  for (auto _ : state) {
    obs::Span span("bench.emit");
    span.arg("i", 1);
    benchmark::DoNotOptimize(&span);
  }
  obs::Trace::instance().set_enabled(false);
  obs::Trace::instance().clear();
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsRegistryCounterAdd(benchmark::State& state) {
  obs::Registry registry;
  const obs::Counter c = registry.counter("bench.counter");
  for (auto _ : state) registry.add(c);
  benchmark::DoNotOptimize(registry.counter_value(c));
}
BENCHMARK(BM_ObsRegistryCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  const obs::Hist h = registry.histogram("bench.hist", 0.0, 2048.0, 64);
  double v = 0.0;
  for (auto _ : state) {
    registry.observe(h, v);
    v += 17.0;
    if (v >= 2048.0) v -= 2048.0;
  }
  benchmark::DoNotOptimize(registry.hist(h).total());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_EnvironmentQuery(benchmark::State& state) {
  const env::Environment env = env::Environment::builtin();
  double t = 0.0;
  int region = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += env.water_intensity(region, t);
    region = (region + 1) % 5;
    t += 313.0;
    // Wrap within a simulated year: at benchmark-scale iteration counts an
    // unbounded t overflows int in downstream index math.
    if (t > 31536000.0) t = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EnvironmentQuery);

}  // namespace

int main(int argc, char** argv) {
  warm_start_selfcheck();
  presolve_selfcheck();
  factor_update_selfcheck();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
