// Fig. 12: sensitivity to region availability — WaterWise on subsets of the
// five regions (paper panels: Zurich-Madrid-Oregon-Milan, Zurich-Milan-
// Mumbai, Zurich-Oregon).  Each (subset, policy) pair is an independent
// campaign-runner scenario building its own trace and environment.
#include <algorithm>

#include "common.hpp"

namespace {

ww::dc::CampaignResult run_subset(const std::vector<int>& regions,
                                  ww::bench::Policy policy, double days) {
  using namespace ww;
  auto trace_cfg = trace::borg_config(7, days);
  trace_cfg.num_regions = static_cast<int>(regions.size());
  trace_cfg.region_weights.clear();  // uniform over the available regions
  const auto jobs = trace::generate_trace(trace_cfg);

  const env::Environment env = env::Environment::builtin_subset(regions);
  const footprint::FootprintModel fp(env);
  dc::SimConfig sim_cfg;
  sim_cfg.tol = 0.5;
  dc::Simulator sim(env, fp, sim_cfg);
  const auto scheduler = bench::make_scheduler(policy);
  return sim.run(jobs, *scheduler);
}

}  // namespace

int main() {
  using namespace ww;
  bench::banner("Figure 12: region-availability sensitivity",
                "Sec. 6, Fig. 12");

  // Index map: 0 Zurich, 1 Madrid, 2 Oregon, 3 Milan, 4 Mumbai.
  const std::vector<std::pair<std::string, std::vector<int>>> subsets = {
      {"Zurich-Madrid-Oregon-Milan", {0, 1, 2, 3}},
      {"Zurich-Milan-Mumbai", {0, 3, 4}},
      {"Zurich-Oregon", {0, 2}},
  };
  const double days = bench::campaign_days();

  // Dynamic-availability panel (shared fault plumbing): instead of removing
  // regions structurally, a generated outage schedule takes them down and
  // brings them back mid-campaign — the scheduler must ride through.
  env::FaultScheduleConfig outage_cfg;
  outage_cfg.seed = 1214;
  outage_cfg.horizon_seconds = days * 86400.0;
  outage_cfg.outages_per_region_day = 2.0;
  const env::FaultSchedule outages(outage_cfg);
  const auto full_jobs =
      trace::generate_trace(trace::borg_config(7, days));
  bench::CampaignSpec outage_spec;
  outage_spec.tol = 0.5;
  outage_spec.faults = &outages;

  std::vector<core::SchedulerStats> storm_stats(1);
  dc::CampaignRunner runner(bench::campaign_config());
  for (const auto& [name, regions] : subsets) {
    runner.add_baseline(name, "Baseline", [&, regions](dc::ScenarioContext&) {
      return run_subset(regions, bench::Policy::Baseline, days);
    });
    runner.add({name, "WaterWise", false, [&, regions](dc::ScenarioContext&) {
                  return run_subset(regions, bench::Policy::WaterWise, days);
                }});
  }
  const std::string storm_name = "All five, injected outages";
  runner.add_baseline(storm_name, "Baseline", [&](dc::ScenarioContext&) {
    return bench::run_policy(full_jobs, bench::Policy::Baseline, outage_spec);
  });
  runner.add({storm_name, "WaterWise", false, [&](dc::ScenarioContext&) {
                core::WaterWiseScheduler ww;
                auto res = bench::run_campaign(full_jobs, ww, outage_spec);
                storm_stats[0] = ww.stats();
                return res;
              }});
  const auto outcomes = bench::run_and_time(runner);

  util::Table table({"Available regions", "Carbon saving %", "Water saving %"});
  const std::size_t num_groups = subsets.size() + 1;
  for (std::size_t i = 0; i < num_groups; ++i) {
    const dc::CampaignResult& base = outcomes[2 * i].result;
    const dc::CampaignResult& ww = outcomes[2 * i + 1].result;
    table.add_row({i < subsets.size() ? subsets[i].first : storm_name,
                   util::Table::fixed(ww.carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(ww.water_saving_pct_vs(base), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  bench::print_degradation_counters(storm_name, storm_stats[0]);
  std::cout << "\nShape check vs. paper: savings persist under every subset; the\n"
               "Zurich-Milan-Mumbai panel (large carbon-intensity spread) yields\n"
               "the largest carbon savings.  The injected-outage panel loses\n"
               "availability dynamically instead of structurally.\n";

  // Standing invariant: a thread-count sweep over the full five-region
  // environment (every subset runs the same plan/solve/commit path) must
  // reproduce the serial decision stream byte for byte — with and without
  // an injected fault campaign attached.
  bench::CampaignSpec eq_spec;
  eq_spec.tol = 0.5;
  const auto eq_jobs =
      trace::generate_trace(trace::borg_config(7, std::min(0.05, days)));
  if (!bench::check_chunk_parallel_equivalence(eq_jobs, eq_spec)) return 1;
  env::FaultScheduleConfig eq_fault_cfg = outage_cfg;
  eq_fault_cfg.horizon_seconds = std::min(0.05, days) * 86400.0;
  eq_fault_cfg.bias_windows_per_region_day = 4.0;
  const env::FaultSchedule eq_faults(eq_fault_cfg);
  eq_spec.faults = &eq_faults;
  if (!bench::check_chunk_parallel_equivalence(eq_jobs, eq_spec)) return 1;
  return 0;
}
