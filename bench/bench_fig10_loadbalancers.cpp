// Fig. 10: WaterWise vs. the sustainability-unaware load balancers
// (Round-Robin, Least-Load).  Paper: WaterWise wins by >19.5% carbon and
// >17.8% water.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 10: load-balancer comparison", "Sec. 6, Fig. 10");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  bench::CampaignSpec spec;
  spec.tol = 0.5;

  dc::CampaignResult base, rr, ll, ww;
  util::global_parallel_for(0, 4, [&](std::size_t k) {
    switch (k) {
      case 0: base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rr = bench::run_policy(jobs, bench::Policy::RoundRobin, spec); break;
      case 2: ll = bench::run_policy(jobs, bench::Policy::LeastLoad, spec); break;
      case 3: ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Scheme", "Carbon saving %", "Water saving %"});
  for (const auto* r : {&rr, &ll, &ww}) {
    table.add_row({r->scheduler_name,
                   util::Table::fixed(r->carbon_saving_pct_vs(base), 2),
                   util::Table::fixed(r->water_saving_pct_vs(base), 2)});
  }
  table.print(std::cout);

  std::cout << "\nWaterWise margin over the better load balancer: "
            << util::Table::fixed(
                   ww.carbon_saving_pct_vs(base) -
                       std::max(rr.carbon_saving_pct_vs(base),
                                ll.carbon_saving_pct_vs(base)), 2)
            << " pp carbon, "
            << util::Table::fixed(
                   ww.water_saving_pct_vs(base) -
                       std::max(rr.water_saving_pct_vs(base),
                                ll.water_saving_pct_vs(base)), 2)
            << " pp water\n"
            << "Shape check vs. paper: intensity-blind spreading saves little or\n"
               "nothing; WaterWise clearly dominates (paper: >19.5% / >17.8%).\n";
  return 0;
}
