// Fig. 9: WaterWise on the Alibaba-style VM trace (8.5x invocation rate,
// double-peaked day) across delay tolerances.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Figure 9: Alibaba trace", "Sec. 6, Fig. 9");

  // The Alibaba rate is 8.5x Borg; scale days down so the default bench run
  // stays quick while keeping ~2x the Borg job count.
  const double days = std::max(0.05, 0.25 * bench::campaign_days());
  const auto jobs = trace::generate_trace(trace::alibaba_config(7, days));
  std::cout << "Jobs in campaign: " << jobs.size() << " over "
            << util::Table::fixed(days, 2) << " day(s)\n";

  const std::vector<double> tolerances = {0.25, 0.50, 0.75, 1.00};
  struct Row {
    dc::CampaignResult base, carbon, water, ww;
  };
  std::vector<Row> rows(tolerances.size());
  util::global_parallel_for(0, tolerances.size() * 4, [&](std::size_t k) {
    const std::size_t i = k / 4;
    bench::CampaignSpec spec;
    spec.tol = tolerances[i];
    switch (k % 4) {
      case 0: rows[i].base = bench::run_policy(jobs, bench::Policy::Baseline, spec); break;
      case 1: rows[i].carbon = bench::run_policy(jobs, bench::Policy::CarbonGreedyOpt, spec); break;
      case 2: rows[i].water = bench::run_policy(jobs, bench::Policy::WaterGreedyOpt, spec); break;
      case 3: rows[i].ww = bench::run_policy(jobs, bench::Policy::WaterWise, spec); break;
    }
  });

  util::Table table({"Delay tolerance", "Scheme", "Carbon saving %",
                     "Water saving %"});
  for (std::size_t i = 0; i < tolerances.size(); ++i) {
    const std::string tol = util::Table::fixed(tolerances[i] * 100.0, 0) + "%";
    const auto& b = rows[i].base;
    auto add = [&](const char* label, const dc::CampaignResult& r) {
      table.add_row({tol, label,
                     util::Table::fixed(r.carbon_saving_pct_vs(b), 2),
                     util::Table::fixed(r.water_saving_pct_vs(b), 2)});
    };
    add("Carbon-Greedy-Opt", rows[i].carbon);
    add("Water-Greedy-Opt", rows[i].water);
    add("WaterWise", rows[i].ww);
  }
  table.print(std::cout);

  const auto& r25 = rows[0];
  std::cout << "\nAt 25% tolerance: WaterWise within "
            << util::Table::fixed(
                   r25.carbon.carbon_saving_pct_vs(r25.base) -
                       r25.ww.carbon_saving_pct_vs(r25.base), 2)
            << " pp of Carbon-Greedy-Opt (carbon) and "
            << util::Table::fixed(
                   r25.water.water_saving_pct_vs(r25.base) -
                       r25.ww.water_saving_pct_vs(r25.base), 2)
            << " pp of Water-Greedy-Opt (water)\n"
            << "Shape check vs. paper: same trends as the Borg trace (paper: within\n"
               "3.43%/2.85% of the oracles at 25% tolerance).\n";
  return 0;
}
