// Table 2: average service time (normalized to execution time) and % of jobs
// violating delay tolerance, for Baseline / Carbon-Greedy-Opt /
// Water-Greedy-Opt / WaterWise across tolerances 25%..100%.
#include "common.hpp"

int main() {
  using namespace ww;
  bench::banner("Table 2: service time and delay-tolerance violations",
                "Sec. 6, Table 2");

  const auto jobs =
      trace::generate_trace(trace::borg_config(7, bench::campaign_days()));
  const std::vector<double> tolerances = {0.25, 0.50, 0.75, 1.00};
  const std::vector<bench::Policy> policies = {
      bench::Policy::Baseline, bench::Policy::CarbonGreedyOpt,
      bench::Policy::WaterGreedyOpt, bench::Policy::WaterWise};

  std::vector<std::vector<dc::CampaignResult>> results(
      policies.size(), std::vector<dc::CampaignResult>(tolerances.size()));
  util::global_parallel_for(
      0, policies.size() * tolerances.size(), [&](std::size_t k) {
        const std::size_t p = k / tolerances.size();
        const std::size_t t = k % tolerances.size();
        bench::CampaignSpec spec;
        spec.tol = tolerances[t];
        results[p][t] = bench::run_policy(jobs, policies[p], spec);
      });

  util::Table service({"Scheme", "Service 25%", "Service 50%", "Service 75%",
                       "Service 100%"});
  util::Table violations({"Scheme", "Viol 25%", "Viol 50%", "Viol 75%",
                          "Viol 100%"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::vector<std::string> srow = {results[p][0].scheduler_name};
    std::vector<std::string> vrow = {results[p][0].scheduler_name};
    for (std::size_t t = 0; t < tolerances.size(); ++t) {
      srow.push_back(util::Table::fixed(results[p][t].mean_service_norm(), 3) +
                     "x");
      vrow.push_back(util::Table::fixed(results[p][t].violation_pct(), 2) + "%");
    }
    service.add_row(std::move(srow));
    violations.add_row(std::move(vrow));
  }
  std::cout << "\nAverage service time (normalized to execution time):\n";
  service.print(std::cout);
  std::cout << "\nDelay-tolerance violations (% of jobs):\n";
  violations.print(std::cout);

  std::cout << "\nShape check vs. paper: Baseline 1.00x / 0%; WaterWise's mean\n"
               "service stays far below 1+TOL (paper: 1.03x-1.13x) with rare\n"
               "violations that shrink as tolerance grows; oracles delay more\n"
               "(paper: up to 1.50x) since they chase future intensities.\n";
  return 0;
}
